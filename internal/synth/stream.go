package synth

import (
	"fmt"
	"hash/fnv"

	"repro/internal/isa"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/workload"
)

// phaseAddrStride separates the address regions of a spec's phases:
// phase k's PCs, branch targets and effective addresses are offset by
// k·2^38. With at most MaxPhases = 8 phases the offsets stay below
// 2^41, well inside the 2^44-byte slot core.Machine gives each stream,
// and far above the extent any single generator's address space can
// reach (working sets cap at 1G, so per-phase extents stay under 2^37).
const phaseAddrStride = uint64(1) << 38

// specSeed folds the canonical spec and the stream seed into the 64-bit
// seed the generators draw from. FNV-1a over the canonical bytes makes
// the value a pure function of (canonical spec, seed): any process on
// any machine derives the same generator state, which is what lets the
// trace cache and the content-addressed result store treat synth specs
// as stable keys.
func specSeed(canon string, seed uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(canon))
	s := h.Sum64()
	if seed != 0 {
		// splitmix64 finalizer: spreads small consecutive seeds over the
		// whole state space before mixing.
		z := seed + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		s ^= z ^ (z >> 31)
	}
	return s
}

// classOf maps the FP share to the suite class the generator shapes
// details around (FP register pressure on loads, store data namespace).
func classOf(p Params) workload.ProgramClass {
	if p.FP >= 0.5 {
		return workload.ClassFP
	}
	return workload.ClassInt
}

// profileFor maps one phase's parameter set onto a workload.Profile.
// Every derived field is a pure function of the parameters, so equal
// canonical specs produce equal profiles.
func profileFor(p Params, name string, seed uint64) workload.Profile {
	comp := 1 - p.Ld - p.St - p.Bf // ≥ 0.1 by Params.Validate
	intW := comp * (1 - p.FP)
	fpW := comp * p.FP
	mix := map[isa.Class]float64{
		isa.Load:   p.Ld,
		isa.Store:  p.St,
		isa.Branch: p.Bf,
	}
	add := func(c isa.Class, w float64) {
		if w > 0 {
			mix[c] = w
		}
	}
	add(isa.IntALU, intW*0.94)
	add(isa.IntMult, intW*0.05)
	add(isa.IntDiv, intW*0.01)
	add(isa.FPAdd, fpW*0.50)
	add(isa.FPMult, fpW*0.40)
	add(isa.FPDiv, fpW*0.10)

	return workload.Profile{
		Name:  name,
		Class: classOf(p),
		Mix:   mix,
		// FP codes join recent values more (reduction trees); the join
		// distance scales with the chain distance so raising ilp widens
		// both the chains and the diamonds built on them.
		TwoSrcFrac:    0.42 + 0.13*p.FP,
		ChainDistMean: p.ILP,
		JoinDistMean:  2 * p.ILP,
		ZeroSrcFrac:   0.05,
		LiveInFrac:    0.12,
		// Strided codes are regular array codes: they also address
		// through induction variables.
		AddrLiveInFrac:     0.15 + 0.65*p.Stride,
		Loops:              12,
		BodyMean:           20,
		TripMean:           40,
		UnbiasedBranchFrac: p.Br,
		WorkingSet:         p.WS,
		StrideFrac:         p.Stride,
		Seed:               seed,
	}
}

// phaseParams derives phase k's parameter set from the base. Phase 0 is
// the base exactly; later phases shift the working set, ILP, branch
// behaviour and stride deterministically (seeded by the spec, not by
// wall-clock anything), modelling the program moving between loops with
// different character.
func phaseParams(base Params, k int, baseSeed uint64) Params {
	if k == 0 {
		return base
	}
	r := rng.New(baseSeed + uint64(k)*0x9e3779b97f4a7c15)
	p := base
	p.ILP = clamp(base.ILP*(0.6+0.8*r.Float64()), 0.5, 64)
	p.Br = clamp(base.Br+(r.Float64()-0.5)*0.3, 0, 1)
	p.Stride = clamp(base.Stride+(r.Float64()-0.5)*0.5, 0, 1)
	if r.Bool(0.5) {
		p.WS = min(base.WS<<1, 1<<30)
	} else {
		p.WS = max(base.WS>>1, 1024)
	}
	return p
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// phasedStream cycles through per-phase generators every plen
// instructions. It renumbers Seq monotonically (trace.Validate requires
// strictly increasing Seq across the whole stream) and offsets each
// phase into its own address region so caches and predictors see the
// phase change as real programs deliver it: new PCs, new data.
type phasedStream struct {
	gens []trace.Stream
	plen uint64
	seq  uint64
}

var _ trace.Stream = (*phasedStream)(nil)

func (s *phasedStream) Next() (isa.Inst, error) {
	phase := (s.seq / s.plen) % uint64(len(s.gens))
	in, err := s.gens[phase].Next()
	if err != nil {
		return in, err
	}
	off := phase * phaseAddrStride
	in.PC += off
	if in.Target != 0 {
		in.Target += off
	}
	if in.EffAddr != 0 {
		in.EffAddr += off
	}
	in.Seq = s.seq
	s.seq++
	return in, nil
}

// NewStream builds the infinite instruction stream a parameter set
// denotes, under the canonical spec name and stream seed that key it.
func NewStream(p Params, canon string, seed uint64) (trace.Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	baseSeed := specSeed(canon, seed)
	if p.Phases == 1 {
		return workload.NewGenerator(profileFor(p, canon, baseSeed))
	}
	gens := make([]trace.Stream, p.Phases)
	for k := 0; k < p.Phases; k++ {
		pp := phaseParams(p, k, baseSeed)
		name := fmt.Sprintf("%s#phase%d", canon, k)
		g, err := workload.NewGenerator(profileFor(pp, name, baseSeed+uint64(k)))
		if err != nil {
			return nil, err
		}
		gens[k] = g
	}
	return &phasedStream{gens: gens, plen: p.PLen}, nil
}
