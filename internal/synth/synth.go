// Package synth generates parameterized synthetic workloads: it turns
// workload.Profile from a closed set of 26 SPEC2000-alike profiles into
// an unbounded, content-addressed scenario space.
//
// A spec string names a workload by its parameters:
//
//	synth(ilp=8,br=0.12,ws=4M,ld=0.28,st=0.12,stride=0.6,phases=3)
//
// Every knob is optional and defaults to a neutral integer-code-like
// value. ParseParams/Params.Canonical round-trip the grammar with
// parameter order and number formatting normalized, so equal workloads
// have equal canonical bytes — which is what makes the specs
// content-addressable: equal bytes ⇒ equal trace-cache keys and equal
// result-store keys, fleet-wide.
//
// Named distribution families denote whole populations: "synth-random",
// "synth-int" and "synth-fp" sample a full parameter set from
// meta-distributions keyed by the stream seed, so
// "synth-random@1+synth-random@2" is a reproducible 2-stream mix drawn
// from the population — the building block of the multi-programmed
// fairness study.
//
// phases>1 makes the workload piecewise: the stream cycles through
// `phases` deterministic variations of the base parameters (working set,
// ILP, stride and branch behaviour all shift, and each phase lives in
// its own address region), switching every plen instructions — program
// behaviour the 26 static profiles cannot express.
//
// The package registers itself with internal/workload at init, so any
// binary that imports it (internal/harness does, transitively covering
// every execution path) accepts synth specs wherever a program name is
// taken.
package synth

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/workload"
)

// MaxPhases bounds the piecewise structure of one spec. It equals
// workload.MaxStreams: past that point phase churn, not phase identity,
// dominates, and the cap keeps phased address-space offsets well inside
// one stream's 2^44-byte slot.
const MaxPhases = workload.MaxStreams

// Params is one synthetic workload's parameter set. The zero value is
// not meaningful; start from Defaults().
type Params struct {
	// ILP is the mean register dependence-chain distance in instructions
	// (workload.Profile.ChainDistMean). Higher = more instruction-level
	// parallelism.
	ILP float64
	// Br is the fraction of conditional branches whose outcome is close
	// to random (Profile.UnbiasedBranchFrac).
	Br float64
	// Bf is the conditional-branch share of the instruction mix.
	Bf float64
	// Ld and St are the load and store shares of the instruction mix.
	Ld, St float64
	// FP is the floating-point share of the computational work; 0 is a
	// pure integer code, 1 a pure FP kernel.
	FP float64
	// WS is the data working-set size in bytes.
	WS uint64
	// Stride is the fraction of static memory instructions that access
	// memory with a regular stride (the rest are uniform random within
	// the working set).
	Stride float64
	// Phases is the number of piecewise program phases (1 = stationary).
	Phases int
	// PLen is the phase segment length in instructions; the stream
	// switches phase every PLen instructions when Phases > 1.
	PLen uint64
}

// Defaults returns the neutral parameter set every omitted knob falls
// back to: a moderately branchy, moderately strided integer code.
func Defaults() Params {
	return Params{
		ILP:    2.5,
		Br:     0.2,
		Bf:     0.12,
		Ld:     0.25,
		St:     0.08,
		FP:     0,
		WS:     1 << 20,
		Stride: 0.5,
		Phases: 1,
		PLen:   50_000,
	}
}

// knob describes one grammar parameter: its canonical position is its
// index in knobs (the order the canonical form renders them in).
type knob struct {
	name string
	set  func(*Params, string) error
	// render returns the canonical value string and whether the value
	// differs from the default (only differing knobs are rendered).
	render func(*Params, *Params) (string, bool)
}

// fractionKnob builds a knob for a [0,1]-ranged float field.
func fractionKnob(name string, f func(*Params) *float64, lo, hi float64) knob {
	return knob{
		name: name,
		set: func(p *Params, v string) error {
			x, err := parseFloat(name, v)
			if err != nil {
				return err
			}
			if x < lo || x > hi {
				return fmt.Errorf("synth: %s=%s out of range [%s, %s]", name, v, formatFloat(lo), formatFloat(hi))
			}
			*f(p) = x
			return nil
		},
		render: func(p, d *Params) (string, bool) {
			return formatFloat(*f(p)), *f(p) != *f(d)
		},
	}
}

// knobs lists every grammar parameter in canonical order. The order is
// part of the wire format: canonical specs render differing knobs in
// exactly this sequence.
var knobs = []knob{
	{
		name: "ilp",
		set: func(p *Params, v string) error {
			x, err := parseFloat("ilp", v)
			if err != nil {
				return err
			}
			if x <= 0 || x > 64 {
				return fmt.Errorf("synth: ilp=%s out of range (0, 64]", v)
			}
			p.ILP = x
			return nil
		},
		render: func(p, d *Params) (string, bool) { return formatFloat(p.ILP), p.ILP != d.ILP },
	},
	fractionKnob("br", func(p *Params) *float64 { return &p.Br }, 0, 1),
	{
		name: "ws",
		set: func(p *Params, v string) error {
			x, err := parseBytes(v)
			if err != nil {
				return fmt.Errorf("synth: ws=%s: %w", v, err)
			}
			if x < 1024 || x > 1<<30 {
				return fmt.Errorf("synth: ws=%s out of range [1K, 1G]", v)
			}
			p.WS = x
			return nil
		},
		render: func(p, d *Params) (string, bool) { return formatBytes(p.WS), p.WS != d.WS },
	},
	fractionKnob("ld", func(p *Params) *float64 { return &p.Ld }, 0, 0.6),
	fractionKnob("st", func(p *Params) *float64 { return &p.St }, 0, 0.4),
	fractionKnob("stride", func(p *Params) *float64 { return &p.Stride }, 0, 1),
	{
		name: "phases",
		set: func(p *Params, v string) error {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("synth: phases=%s is not an integer", v)
			}
			if n < 1 || n > MaxPhases {
				return fmt.Errorf("synth: phases=%d out of range [1, %d]", n, MaxPhases)
			}
			p.Phases = n
			return nil
		},
		render: func(p, d *Params) (string, bool) {
			return strconv.Itoa(p.Phases), p.Phases != d.Phases
		},
	},
	fractionKnob("bf", func(p *Params) *float64 { return &p.Bf }, 0, 0.4),
	fractionKnob("fp", func(p *Params) *float64 { return &p.FP }, 0, 1),
	{
		name: "plen",
		set: func(p *Params, v string) error {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return fmt.Errorf("synth: plen=%s is not a positive integer", v)
			}
			if n < 1000 || n > 1_000_000_000 {
				return fmt.Errorf("synth: plen=%d out of range [1000, 1000000000]", n)
			}
			p.PLen = n
			return nil
		},
		render: func(p, d *Params) (string, bool) {
			return strconv.FormatUint(p.PLen, 10), p.PLen != d.PLen
		},
	},
}

// knobNames returns the known parameter names in canonical order (for
// error messages).
func knobNames() string {
	names := make([]string, len(knobs))
	for i, k := range knobs {
		names[i] = k.name
	}
	return strings.Join(names, ", ")
}

// parseFloat parses a float knob value, rejecting NaN and infinities
// (they parse fine but poison every downstream distribution).
func parseFloat(name, v string) (float64, error) {
	x, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("synth: %s=%s is not a number", name, v)
	}
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0, fmt.Errorf("synth: %s=%s is not finite", name, v)
	}
	return x, nil
}

// formatFloat renders a float canonically: shortest representation that
// round-trips. The parameter ranges keep the exponent form out of reach
// of the spec separators ('+' never appears below 1e21).
func formatFloat(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

// parseBytes parses a byte count with an optional binary suffix:
// "65536", "64K", "4M", "1G".
func parseBytes(v string) (uint64, error) {
	mult := uint64(1)
	switch {
	case strings.HasSuffix(v, "K"), strings.HasSuffix(v, "k"):
		mult, v = 1<<10, v[:len(v)-1]
	case strings.HasSuffix(v, "M"), strings.HasSuffix(v, "m"):
		mult, v = 1<<20, v[:len(v)-1]
	case strings.HasSuffix(v, "G"), strings.HasSuffix(v, "g"):
		mult, v = 1<<30, v[:len(v)-1]
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("not a byte count (want e.g. 65536, 64K, 4M, 1G)")
	}
	if n == 0 {
		return 0, fmt.Errorf("zero working set")
	}
	if n > math.MaxUint64/mult {
		return 0, fmt.Errorf("overflows")
	}
	return n * mult, nil
}

// formatBytes renders a byte count canonically: the largest binary
// suffix that divides it exactly, else plain digits.
func formatBytes(n uint64) string {
	switch {
	case n != 0 && n%(1<<30) == 0:
		return strconv.FormatUint(n>>30, 10) + "G"
	case n != 0 && n%(1<<20) == 0:
		return strconv.FormatUint(n>>20, 10) + "M"
	case n != 0 && n%(1<<10) == 0:
		return strconv.FormatUint(n>>10, 10) + "K"
	default:
		return strconv.FormatUint(n, 10)
	}
}

// ParseParams parses the parenthesized parameter list of a
// "synth(...)" spec (the full name, including the "synth(" prefix and
// ")" suffix; bare "synth" is the all-defaults spec). Errors are
// actionable: they name the offending knob, its value, and the accepted
// range.
func ParseParams(name string) (Params, error) {
	p := Defaults()
	if name == "synth" {
		return p, nil
	}
	inner, ok := strings.CutPrefix(name, "synth(")
	if !ok || !strings.HasSuffix(inner, ")") {
		return p, fmt.Errorf("synth: malformed spec %q (want synth(k=v,...) or a family like synth-random)", name)
	}
	inner = inner[:len(inner)-1]
	if strings.ContainsAny(inner, "()") {
		return p, fmt.Errorf("synth: malformed spec %q (nested parentheses)", name)
	}
	if strings.TrimSpace(inner) == "" {
		return p, nil
	}
	seen := make(map[string]bool)
	for _, item := range strings.Split(inner, ",") {
		item = strings.TrimSpace(item)
		k, v, ok := strings.Cut(item, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if !ok || k == "" || v == "" {
			return p, fmt.Errorf("synth: parameter %q is not name=value", item)
		}
		var kn *knob
		for i := range knobs {
			if knobs[i].name == k {
				kn = &knobs[i]
				break
			}
		}
		if kn == nil {
			return p, fmt.Errorf("synth: unknown parameter %q (want one of %s)", k, knobNames())
		}
		if seen[k] {
			return p, fmt.Errorf("synth: duplicate parameter %q", k)
		}
		seen[k] = true
		if err := kn.set(&p, v); err != nil {
			return p, err
		}
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// Validate reports the first cross-parameter problem. Per-knob range
// checks happen at parse time; this catches combinations each knob
// cannot see alone.
func (p Params) Validate() error {
	if p.Ld+p.St+p.Bf > 0.9 {
		return fmt.Errorf("synth: ld+st+bf = %s leaves under 10%% of the mix for computation (max 0.9)",
			formatFloat(p.Ld+p.St+p.Bf))
	}
	return nil
}

// Canonical renders the parameter set in the one canonical spelling:
// "synth(...)" with only the non-default knobs, in canonical knob
// order, in canonical number formats; the all-defaults set is bare
// "synth". Canonical is a fixed point of ParseParams: parsing its
// output reproduces p exactly.
func (p Params) Canonical() string {
	d := Defaults()
	var b strings.Builder
	b.WriteString("synth(")
	first := true
	for i := range knobs {
		v, differs := knobs[i].render(&p, &d)
		if !differs {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(knobs[i].name)
		b.WriteByte('=')
		b.WriteString(v)
	}
	if first {
		return "synth"
	}
	b.WriteByte(')')
	return b.String()
}

// Families lists the named distribution families, sorted. Each family
// name is itself a canonical spec; the stream seed selects the member
// of the population.
func Families() []string {
	out := make([]string, 0, len(families))
	for name := range families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// IsFamily reports whether the name is a registered distribution family.
func IsFamily(name string) bool {
	_, ok := families[name]
	return ok
}
