package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/results"
	"repro/internal/workload"
)

// SynthSweep measures a scenario sweep built from synthetic spec strings:
// a working-set / ILP axis over the headline ring machine, through the
// same Grid path real sweeps use (shared trace cache, pooled machines).
// Reports the IPC spread across the axis plus simulation throughput.
func SynthSweep(b *testing.B) {
	cfg := core.MustPaperConfig(core.ArchRing, 8, 2, 1)
	specs := []string{
		"synth(ws=64K)",
		"synth",
		"synth(ws=16M)",
		"synth(ilp=8,ws=64K)",
		"synth(phases=4,plen=10000)",
	}
	for i, s := range specs {
		spec, err := workload.ParseSpec(s)
		if err != nil {
			b.Fatal(err)
		}
		specs[i] = spec.Name()
	}
	var lo, hi float64
	var committed uint64
	for i := 0; i < b.N; i++ {
		res, err := harness.Grid([]core.Config{cfg}, specs, Insts, Warmup)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi = 0, 0
		for _, r := range res {
			ipc := r.Stats.IPC()
			if lo == 0 || ipc < lo {
				lo = ipc
			}
			if ipc > hi {
				hi = ipc
			}
			committed += r.Stats.Committed
		}
	}
	b.ReportMetric(lo, "min-IPC")
	b.ReportMetric(hi, "max-IPC")
	b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "grid-inst/s")
}

// MixFairnessStudy measures the multi-programmed fairness study kernel:
// 2-stream synth-random mixes on ring and conventional machines, with
// single-stream baselines served through a content-addressed store and
// STP/ANTT/fairness computed per mix — the mixstudy subcommand's inner
// loop. A fresh store per iteration keeps the measurement cold-cache;
// overlapping mix seed windows still share baselines within a pass.
func MixFairnessStudy(b *testing.B) {
	cfgs := []core.Config{
		core.MustPaperConfig(core.ArchRing, 8, 2, 1),
		core.MustPaperConfig(core.ArchConv, 8, 2, 1),
	}
	var stp, antt, fair float64
	sims := 0
	for i := 0; i < b.N; i++ {
		store := results.NewMemoryLRU(4096)
		sims = 0
		run := func(req harness.Request) results.Result {
			res, hit, err := results.RunCached(store, req)
			if err != nil {
				b.Fatal(err)
			}
			if res.Failed() {
				b.Fatalf("%s/%s: %s", req.Config.Name, req.Workload.Name(), res.Err)
			}
			if !hit {
				sims++
			}
			return res
		}
		n := 0.0
		stp, antt, fair = 0, 0, 0
		for _, cfg := range cfgs {
			for s := uint64(1); s <= 2; s++ {
				spec := workload.Spec{Streams: []workload.StreamSpec{
					{Program: "synth-random", Seed: s},
					{Program: "synth-random", Seed: s + 1},
				}}
				req := harness.Request{Config: cfg, Workload: spec, Insts: Insts, Warmup: Warmup}
				mixRes := run(req)
				var base []float64
				for _, breq := range harness.BaselineRequests(req) {
					bres := run(breq)
					base = append(base, bres.Stats.IPC())
				}
				m, err := harness.Fairness(mixRes.Stats, base)
				if err != nil {
					b.Fatal(err)
				}
				stp += m.STP
				antt += m.ANTT
				fair += m.Fairness
				n++
			}
		}
		stp, antt, fair = stp/n, antt/n, fair/n
	}
	b.ReportMetric(stp, "mean-STP")
	b.ReportMetric(antt, "mean-ANTT")
	b.ReportMetric(fair, "mean-fairness")
	b.ReportMetric(float64(sims), "sims/op")
}
