package bench

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/harness"
	"repro/internal/results"
	"repro/internal/workload"
)

// TwinExplore measures the analytical twin's two-tier gate on the
// acceptance exploration: the ringsim-explore default axes (arch ×
// clusters × buses × iw, 16 candidates in 4 equal-area groups) over the
// full workload suite at the calibration instruction budget. One
// iteration runs the exhaustive grid and the twin-gated grid over a
// shared store and reports
//
//	sims-avoided-ratio   fraction of program simulations the gate skipped
//	twin-mape-%          predicted-vs-simulated IPC error on the verified set
//	frontier-identical   1 when the twin frontier equals the exhaustive one
//	twin-score-us        mean closed-form scoring latency per candidate
//
// The twin's value proposition in two numbers: the ratio is what the
// gate saves, the MAPE (and the frontier bit) is what it risks.
func TwinExplore(b *testing.B) {
	const (
		twinInsts  = 300_000
		twinWarmup = 50_000
	)
	axes, err := dse.ParseAxes("arch=ring,conv;clusters=4,8;buses=1..2;iw=1..2")
	if err != nil {
		b.Fatal(err)
	}
	space := dse.Space{Base: core.MustPaperConfig(core.ArchRing, 8, 2, 1), Axes: axes}
	progs := workload.Names()
	var avoidedRatio, mape, frontierOK, scoreUS float64
	for i := 0; i < b.N; i++ {
		store := results.NewMemoryLRU(4096)
		grid, err := dse.NewStrategy("grid", 0)
		if err != nil {
			b.Fatal(err)
		}
		opts := func(tw *dse.TwinOptions) dse.Options {
			return dse.Options{
				Space:     space,
				Strategy:  grid,
				Evaluator: &dse.SimEvaluator{Programs: progs, Insts: twinInsts, Warmup: twinWarmup, Store: store},
				Twin:      tw,
			}
		}
		exact, err := dse.Explore(opts(nil))
		if err != nil {
			b.Fatal(err)
		}
		profiles := harness.NewProfileCache(nil, "")
		twinOpts := &dse.TwinOptions{
			Mode:     dse.TwinOn,
			Programs: progs,
			Insts:    twinInsts,
			Warmup:   twinWarmup,
			Profiles: profiles,
		}
		// Warm the profile cache outside the latency clock, then time the
		// pure closed-form pass: that number is the microseconds-per-
		// candidate claim, profiling amortizes across every exploration
		// that shares the cache.
		for _, prog := range progs {
			spec, err := workload.ParseSpec(prog)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := profiles.ProfileSpec(spec, twinInsts, twinWarmup); err != nil {
				b.Fatal(err)
			}
		}
		start := time.Now()
		twin, err := dse.Explore(opts(twinOpts))
		if err != nil {
			b.Fatal(err)
		}
		scoreUS = time.Since(start).Seconds() * 1e6 / float64(twin.Proposed)

		answered := twin.SimsRun + twin.CacheHits + twin.SimsAvoided
		avoidedRatio = float64(twin.SimsAvoided) / float64(answered)
		mape = twin.TwinMAPE
		frontierOK = 1
		ef := map[string]dse.Objectives{}
		for _, p := range exact.Frontier {
			ef[p.Config] = p.Objectives
		}
		if len(twin.Frontier) != len(exact.Frontier) {
			frontierOK = 0
		}
		for _, p := range twin.Frontier {
			if ef[p.Config] != p.Objectives {
				frontierOK = 0
			}
		}
	}
	b.ReportMetric(avoidedRatio, "sims-avoided-ratio")
	b.ReportMetric(mape, "twin-mape-%")
	b.ReportMetric(frontierOK, "frontier-identical")
	b.ReportMetric(scoreUS, "twin-score-us")
}
