package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/version"
)

// Spec names one recordable benchmark.
type Spec struct {
	// Name is the benchmark's short name ("Fig6Speedup"), matching the
	// Benchmark<Name> entry point in bench_test.go.
	Name string
	// Fn is the shared benchmark body.
	Fn func(*testing.B)
	// Headline marks the benchmarks the default benchrec run records:
	// the kernel-performance acceptance pair.
	Headline bool
}

// Specs lists every recordable benchmark in presentation order.
func Specs() []Spec {
	return []Spec{
		{Name: "Fig6Speedup", Fn: Fig6Speedup, Headline: true},
		{Name: "BatchedGrid", Fn: BatchedGrid, Headline: true},
		{Name: "SampledGrid", Fn: SampledGrid, Headline: true},
		{Name: "SimulatorThroughput", Fn: SimulatorThroughput, Headline: true},
		{Name: "Table1AreaModel", Fn: Table1AreaModel},
		{Name: "Section32Layout", Fn: Section32Layout},
		{Name: "Fig7Comms", Fn: Fig7Comms},
		{Name: "Fig8Distance", Fn: Fig8Distance},
		{Name: "Fig9Contention", Fn: Fig9Contention},
		{Name: "Fig10NReady", Fn: Fig10NReady},
		{Name: "Fig11Distribution", Fn: Fig11Distribution},
		{Name: "Fig12WireScaling", Fn: Fig12WireScaling},
		{Name: "Fig13SSASpeedup", Fn: Fig13SSASpeedup},
		{Name: "Fig14SSANReady", Fn: Fig14SSANReady},
		{Name: "SweepSingleNode", Fn: SweepSingleNode},
		{Name: "SweepFleet2Workers", Fn: SweepFleet2Workers},
		{Name: "MultiProgram2", Fn: MultiProgram2, Headline: true},
		{Name: "MultiProgram4", Fn: MultiProgram4},
		{Name: "SynthSweep", Fn: SynthSweep},
		{Name: "TwinExplore", Fn: TwinExplore},
		{Name: "MixFairnessStudy", Fn: MixFairnessStudy},
		{Name: "WorkloadGenerator", Fn: WorkloadGenerator},
		{Name: "BusReservation", Fn: BusReservation},
		{Name: "Predictor", Fn: Predictor},
		{Name: "CacheAccess", Fn: CacheAccess},
		{Name: "MachineReset", Fn: MachineReset},
	}
}

// Result is one benchmark's measurement in a snapshot file.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH_<n>.json snapshot schema ("ringsim-bench/1"): one
// record of the benchmark suite at a point in the repository's history.
// Successive snapshots (BENCH_1.json, BENCH_2.json, ...) form the
// performance trajectory.
type File struct {
	Schema     string    `json:"schema"`
	RecordedAt time.Time `json:"recorded_at"`
	GoVersion  string    `json:"go_version"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	NumCPU     int       `json:"num_cpu"`
	// GOMAXPROCS is the worker-pool parallelism the grid benchmarks ran
	// with — without it two snapshots on the same machine are not
	// comparable (a container may cap it well below NumCPU).
	GOMAXPROCS int `json:"gomaxprocs"`
	// GitSHA is the repository revision the snapshot measured ("unknown"
	// when neither the build info nor git can supply one).
	GitSHA     string   `json:"git_sha"`
	Note       string   `json:"note,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// SchemaV1 is the current snapshot schema identifier.
const SchemaV1 = "ringsim-bench/1"

// Run measures one spec through testing.Benchmark and converts the
// result. Benchmark duration is governed by the test framework's
// -test.benchtime flag (set it via testing.Init + flag.Set in non-test
// binaries).
func Run(s Spec) (Result, error) {
	br := testing.Benchmark(s.Fn)
	if br.N == 0 {
		return Result{}, fmt.Errorf("bench: %s failed (zero iterations)", s.Name)
	}
	r := Result{
		Name:        s.Name,
		Iterations:  br.N,
		NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
		BytesPerOp:  br.AllocedBytesPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
	}
	if len(br.Extra) > 0 {
		r.Metrics = make(map[string]float64, len(br.Extra))
		for k, v := range br.Extra {
			r.Metrics[k] = v
		}
	}
	return r, nil
}

// NewFile wraps results in a snapshot with environment metadata.
func NewFile(note string, results []Result) File {
	return File{
		Schema:     SchemaV1,
		RecordedAt: time.Now().UTC().Truncate(time.Second),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GitSHA:     gitSHA(),
		Note:       note,
		Benchmarks: results,
	}
}

// gitSHA resolves the repository revision being measured: the VCS stamp
// baked into the binary when present, otherwise (benchrec usually runs
// via `go run`, which does not stamp) the working tree's HEAD via git.
func gitSHA() string {
	if rev := version.Revision(); rev != "unknown" {
		return rev
	}
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// NextSnapshotPath returns dir/BENCH_<n>.json for the smallest n ≥ 1 not
// already present.
func NextSnapshotPath(dir string) (string, error) {
	for n := 1; ; n++ {
		p := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(p); os.IsNotExist(err) {
			return p, nil
		} else if err != nil {
			return "", err
		}
	}
}

// WriteSnapshot marshals f to path (indented, trailing newline).
func WriteSnapshot(path string, f File) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
