package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/results"
	"repro/internal/server"
	"repro/internal/workload"
)

// SweepSingleNode measures the Figure 6 grid end-to-end through the
// simulation service on one process: HTTP submission, bounded queue,
// local worker pool, content-addressed store. The store is fresh every
// iteration so each pass simulates the full grid.
func SweepSingleNode(b *testing.B) {
	serviceSweep(b, false)
}

// SweepFleet2Workers measures the same grid through a dispatch-only
// coordinator and two in-process fleet workers over loopback HTTP — the
// distributed topology on one machine. Comparing against SweepSingleNode
// prices the fleet protocol itself (lease/complete round trips, JSON
// encoding) since both setups share the same cores.
func SweepFleet2Workers(b *testing.B) {
	serviceSweep(b, true)
}

// serviceSweep drives one Figure-6-grid sweep per iteration through a
// fresh service instance.
func serviceSweep(b *testing.B, useFleet bool) {
	b.Helper()
	programs := workload.Names()
	configs := harness.PaperConfigs()
	wire := make([]map[string]core.Config, len(configs))
	for i, c := range configs {
		wire[i] = map[string]core.Config{"config": c}
	}
	body, err := json.Marshal(map[string]any{
		"configs": wire, "programs": programs, "insts": Insts, "warmup": Warmup,
	})
	if err != nil {
		b.Fatal(err)
	}
	total := len(configs) * len(programs)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := server.Options{QueueDepth: 512, Store: results.NewMemoryLRU(4096)}
		if useFleet {
			opts.Workers = -1
			opts.Fleet = &fleet.CoordinatorOptions{}
		}
		srv, err := server.New(opts)
		if err != nil {
			b.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		if useFleet {
			capacity := runtime.GOMAXPROCS(0) / 2
			if capacity < 1 {
				capacity = 1
			}
			for n := 0; n < 2; n++ {
				w := fleet.NewWorker(fleet.WorkerOptions{
					Coordinator:  hs.URL,
					Name:         fmt.Sprintf("bench-%d", n),
					Capacity:     capacity,
					PollInterval: 5 * time.Millisecond,
				})
				wg.Add(1)
				go func() {
					defer wg.Done()
					_ = w.Run(ctx)
				}()
			}
		}
		if done := driveSweep(b, hs.URL, body); done != total {
			b.Fatalf("sweep finished %d/%d members", done, total)
		}
		cancel()
		wg.Wait()
		hs.Close()
		srv.Close()
	}
	b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "runs/s")
}

// driveSweep submits one sweep and polls it to completion, returning the
// number of members that finished successfully.
func driveSweep(b *testing.B, base string, body []byte) int {
	b.Helper()
	resp, err := http.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var sv struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		Done   int    `json:"done"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sv)
	resp.Body.Close()
	if err != nil {
		b.Fatal(err)
	}
	for sv.Status == "running" || sv.Status == "queued" {
		time.Sleep(5 * time.Millisecond)
		r, err := http.Get(base + "/v1/sweeps/" + sv.ID)
		if err != nil {
			b.Fatal(err)
		}
		err = json.NewDecoder(r.Body).Decode(&sv)
		r.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
	}
	if sv.Status != "done" {
		b.Fatalf("sweep ended %s", sv.Status)
	}
	return sv.Done
}
