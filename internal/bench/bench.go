// Package bench holds the paper's figure benchmarks as plain functions so
// two harnesses can share them: the `go test -bench` entry points in the
// repository root (bench_test.go) and the cmd/benchrec recorder, which
// runs them via testing.Benchmark and snapshots the results into the
// repository's BENCH_<n>.json performance trajectory.
package bench

import (
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/interconnect"
	"repro/internal/layout"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Insts and Warmup are the per-program instruction budgets for figure
// benchmarks; small enough that a full-grid benchmark iteration stays in
// seconds, large enough that the shapes are stable.
const (
	Insts  = 30_000
	Warmup = 6_000
)

// mainGrid runs the ten Table 3 configurations over the full suite.
func mainGrid(b *testing.B) map[harness.Key]harness.Run {
	b.Helper()
	res, err := harness.Grid(harness.PaperConfigs(), workload.Names(), Insts, Warmup)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// Table1AreaModel regenerates the Table 1 block areas.
func Table1AreaModel(b *testing.B) {
	var blocks layout.Blocks
	for i := 0; i < b.N; i++ {
		blocks = layout.Compute(layout.DefaultConfig())
	}
	b.ReportMetric(blocks.FPU.Area, "FPU-λ²")
	b.ReportMetric(blocks.RegFile.Area, "regfile-λ²")
}

// Section32Layout regenerates the layout distance analysis.
func Section32Layout(b *testing.B) {
	var d layout.Distances
	for i := 0; i < b.N; i++ {
		d = layout.Analyze(layout.DefaultConfig())
	}
	b.ReportMetric(d.UnifiedRingInt, "int-λ")
	b.ReportMetric(d.UnifiedRingFP, "fp-λ")
	b.ReportMetric(d.SplitRings, "split-λ")
}

// Fig6Speedup regenerates Figure 6: speedup of Ring over Conv, reported
// for the paper's headline configuration (8 clusters, 2 IW, 1 bus) as
// AVERAGE/INT/FP percentages, plus the grid's simulation rate.
func Fig6Speedup(b *testing.B) {
	var avg, intS, fpS float64
	var committed uint64
	for i := 0; i < b.N; i++ {
		res := mainGrid(b)
		avg = harness.Speedup(res, "Ring_8clus_1bus_2IW", "Conv_8clus_1bus_2IW", harness.SuiteAll)
		intS = harness.Speedup(res, "Ring_8clus_1bus_2IW", "Conv_8clus_1bus_2IW", harness.SuiteInt)
		fpS = harness.Speedup(res, "Ring_8clus_1bus_2IW", "Conv_8clus_1bus_2IW", harness.SuiteFP)
		for _, r := range res {
			committed += r.Stats.Committed
		}
	}
	b.ReportMetric(100*avg, "speedup-avg-%")
	b.ReportMetric(100*intS, "speedup-int-%")
	b.ReportMetric(100*fpS, "speedup-fp-%")
	b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "grid-inst/s")
}

// Fig7Comms regenerates Figure 7: communications per instruction for the
// 8-cluster 1-bus 2IW pair.
func Fig7Comms(b *testing.B) {
	var ring, conv float64
	metric := func(s *core.Stats) float64 { return s.CommsPerInst() }
	for i := 0; i < b.N; i++ {
		res := mainGrid(b)
		ring = harness.Aggregate(res, "Ring_8clus_1bus_2IW", harness.SuiteAll, metric)
		conv = harness.Aggregate(res, "Conv_8clus_1bus_2IW", harness.SuiteAll, metric)
	}
	b.ReportMetric(ring, "ring-comms/inst")
	b.ReportMetric(conv, "conv-comms/inst")
}

// Fig8Distance regenerates Figure 8: average hop distance per
// communication.
func Fig8Distance(b *testing.B) {
	var ring, conv float64
	metric := func(s *core.Stats) float64 { return s.AvgCommDistance() }
	for i := 0; i < b.N; i++ {
		res := mainGrid(b)
		ring = harness.Aggregate(res, "Ring_8clus_1bus_2IW", harness.SuiteAll, metric)
		conv = harness.Aggregate(res, "Conv_8clus_1bus_2IW", harness.SuiteAll, metric)
	}
	b.ReportMetric(ring, "ring-hops")
	b.ReportMetric(conv, "conv-hops")
}

// Fig9Contention regenerates Figure 9: bus-contention delay per
// communication.
func Fig9Contention(b *testing.B) {
	var ring, conv float64
	metric := func(s *core.Stats) float64 { return s.AvgCommWait() }
	for i := 0; i < b.N; i++ {
		res := mainGrid(b)
		ring = harness.Aggregate(res, "Ring_8clus_1bus_2IW", harness.SuiteFP, metric)
		conv = harness.Aggregate(res, "Conv_8clus_1bus_2IW", harness.SuiteFP, metric)
	}
	b.ReportMetric(ring, "ring-wait-cyc")
	b.ReportMetric(conv, "conv-wait-cyc")
}

// Fig10NReady regenerates Figure 10: NREADY workload imbalance.
func Fig10NReady(b *testing.B) {
	var ring, conv float64
	metric := func(s *core.Stats) float64 { return s.AvgNReady() }
	for i := 0; i < b.N; i++ {
		res := mainGrid(b)
		ring = harness.Aggregate(res, "Ring_8clus_1bus_1IW", harness.SuiteAll, metric)
		conv = harness.Aggregate(res, "Conv_8clus_1bus_1IW", harness.SuiteAll, metric)
	}
	b.ReportMetric(ring, "ring-nready")
	b.ReportMetric(conv, "conv-nready")
}

// Fig11Distribution regenerates Figure 11: the evenness of the ring
// machine's per-cluster dispatch distribution, reported as the maximum
// cluster share across the suite (12.5% = perfectly even on 8 clusters).
func Fig11Distribution(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res := mainGrid(b)
		worst = 0
		for _, p := range workload.Names() {
			r := res[harness.Key{Config: "Ring_8clus_1bus_2IW", Workload: p}]
			st := r.Stats
			for c := 0; c < 8; c++ {
				if s := st.ClusterShare(c); s > worst {
					worst = s
				}
			}
		}
	}
	b.ReportMetric(100*worst, "max-cluster-share-%")
}

// Fig12WireScaling regenerates Figure 12: Ring-over-Conv speedup with
// 2-cycle hops (1 bus, 8 clusters, 2IW).
func Fig12WireScaling(b *testing.B) {
	var avg, fp float64
	for i := 0; i < b.N; i++ {
		res, err := harness.Grid(harness.Hop2Configs(), workload.Names(), Insts, Warmup)
		if err != nil {
			b.Fatal(err)
		}
		avg = harness.Speedup(res, "Ring_8clus_1bus_2IW_2cyclehop", "Conv_8clus_1bus_2IW_2cyclehop", harness.SuiteAll)
		fp = harness.Speedup(res, "Ring_8clus_1bus_2IW_2cyclehop", "Conv_8clus_1bus_2IW_2cyclehop", harness.SuiteFP)
	}
	b.ReportMetric(100*avg, "speedup-avg-%")
	b.ReportMetric(100*fp, "speedup-fp-%")
}

// Fig13SSASpeedup regenerates Figure 13: Ring+SSA over Conv+SSA on the
// paper's quoted configuration (8 clusters, 1IW, 2 buses).
func Fig13SSASpeedup(b *testing.B) {
	var avg, intS, fpS float64
	for i := 0; i < b.N; i++ {
		res, err := harness.Grid(harness.SSAConfigs(), workload.Names(), Insts, Warmup)
		if err != nil {
			b.Fatal(err)
		}
		avg = harness.Speedup(res, "Ring_8clus_2bus_1IW+SSA", "Conv_8clus_2bus_1IW+SSA", harness.SuiteAll)
		intS = harness.Speedup(res, "Ring_8clus_2bus_1IW+SSA", "Conv_8clus_2bus_1IW+SSA", harness.SuiteInt)
		fpS = harness.Speedup(res, "Ring_8clus_2bus_1IW+SSA", "Conv_8clus_2bus_1IW+SSA", harness.SuiteFP)
	}
	b.ReportMetric(100*avg, "speedup-avg-%")
	b.ReportMetric(100*intS, "speedup-int-%")
	b.ReportMetric(100*fpS, "speedup-fp-%")
}

// Fig14SSANReady regenerates Figure 14: NREADY under SSA.
func Fig14SSANReady(b *testing.B) {
	var ring, conv float64
	metric := func(s *core.Stats) float64 { return s.AvgNReady() }
	for i := 0; i < b.N; i++ {
		res, err := harness.Grid(harness.SSAConfigs(), workload.Names(), Insts, Warmup)
		if err != nil {
			b.Fatal(err)
		}
		ring = harness.Aggregate(res, "Ring_8clus_1bus_1IW+SSA", harness.SuiteAll, metric)
		conv = harness.Aggregate(res, "Conv_8clus_1bus_1IW+SSA", harness.SuiteAll, metric)
	}
	b.ReportMetric(ring, "ring-ssa-nready")
	b.ReportMetric(conv, "conv-ssa-nready")
}

// BatchedGrid measures the Figure-6 grid under fixed lockstep batch
// sizes: the same requests executed with per-group member caps of 1
// (unbatched baseline), 8, and 32, each reported as its own simulation
// rate so the amortization of one trace decode across N configurations
// is visible in the trajectory.
func BatchedGrid(b *testing.B) {
	reqs, err := harness.Expand(harness.PaperConfigs(), workload.Names(), Insts, Warmup)
	if err != nil {
		b.Fatal(err)
	}
	sizes := []int{1, 8, 32}
	rates := make(map[int]float64, len(sizes))
	for i := 0; i < b.N; i++ {
		for _, size := range sizes {
			start := time.Now()
			runs := harness.GridRunsN(reqs, size, runtime.GOMAXPROCS(0))
			elapsed := time.Since(start).Seconds()
			var committed uint64
			for _, r := range runs {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
				committed += r.Stats.Committed
			}
			rates[size] = float64(committed) / elapsed
		}
	}
	for _, size := range sizes {
		b.ReportMetric(rates[size], fmt.Sprintf("batch%d-inst/s", size))
	}
}

// SampledGrid is the sampled-fidelity acceptance benchmark: the Figure-6
// grid at a 1M-instruction budget run exact and then with
// DefaultSampling, reporting both simulation rates, the wall-clock
// speedup, and the mean/max absolute IPC error of the sampled estimates
// against the exact grid. The trajectory gates on speedup ≥5× at mean
// error ≤2% (docs/performance.md).
func SampledGrid(b *testing.B) {
	const (
		insts  = 1_000_000
		warmup = 100_000
	)
	cfgs := harness.PaperConfigs()
	names := workload.Names()
	var exactRate, sampledRate, speedup, meanErr, maxErr float64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		exact, err := harness.Grid(cfgs, names, insts, warmup)
		if err != nil {
			b.Fatal(err)
		}
		exactSec := time.Since(start).Seconds()
		start = time.Now()
		sampled, err := harness.GridSampledN(cfgs, names, insts, warmup, 0, harness.DefaultSampling)
		if err != nil {
			b.Fatal(err)
		}
		sampledSec := time.Since(start).Seconds()
		var sumErr float64
		maxErr = 0
		for k, er := range exact {
			sr, ok := sampled[k]
			if !ok {
				b.Fatalf("sampled grid missing %v", k)
			}
			e := math.Abs(sr.Stats.IPC()-er.Stats.IPC()) / er.Stats.IPC()
			sumErr += e
			if e > maxErr {
				maxErr = e
			}
		}
		meanErr = sumErr / float64(len(exact))
		// Both rates count the full per-cell budget (warmup + measured):
		// the sampled rate is "effective" — instructions the run accounts
		// for per wall-clock second, most of them fast-forwarded.
		budget := float64(len(cfgs)*len(names)) * float64(insts+warmup)
		exactRate = budget / exactSec
		sampledRate = budget / sampledSec
		speedup = exactSec / sampledSec
	}
	b.ReportMetric(exactRate, "exact-inst/s")
	b.ReportMetric(sampledRate, "sampled-effective-inst/s")
	b.ReportMetric(speedup, "speedup-x")
	b.ReportMetric(100*meanErr, "mean-abs-ipc-err-%")
	b.ReportMetric(100*maxErr, "max-abs-ipc-err-%")
}

// --- component micro-benchmarks ---

// SimulatorThroughput measures simulation speed in simulated instructions
// per wall-clock second on the production path — shared materialized
// trace, pooled machine — for the headline configuration.
func SimulatorThroughput(b *testing.B) {
	req := harness.Request{
		Config:   core.MustPaperConfig(core.ArchRing, 8, 2, 1),
		Workload: workload.Single("swim"),
		Insts:    50_000,
	}
	b.ResetTimer()
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		run := harness.Execute(req)
		if run.Err != nil {
			b.Fatal(run.Err)
		}
		total += run.Stats.Committed
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "simulated-inst/s")
}

// multiProgram runs one multi-programmed mix on the headline ring
// configuration and reports total and per-stream IPC plus simulation
// throughput.
func multiProgram(b *testing.B, mix string) {
	spec, err := workload.ParseSpec(mix)
	if err != nil {
		b.Fatal(err)
	}
	req := harness.Request{
		Config:   core.MustPaperConfig(core.ArchRing, 8, 2, 1),
		Workload: spec,
		Insts:    Insts,
		Warmup:   Warmup,
	}
	var st core.Stats
	total := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := harness.Execute(req)
		if run.Err != nil {
			b.Fatal(run.Err)
		}
		st = run.Stats
		total += run.Stats.Committed
	}
	b.ReportMetric(st.IPC(), "machine-IPC")
	for i := range st.PerStream {
		b.ReportMetric(st.StreamIPC(i), fmt.Sprintf("stream%d-IPC", i))
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "simulated-inst/s")
}

// MultiProgram2 measures a 2-stream INT+FP mix (gcc+swim) — the
// shared-resource scenario that stresses steering hardest.
func MultiProgram2(b *testing.B) { multiProgram(b, "gcc+swim") }

// MultiProgram4 measures a 4-stream mix spanning both suites.
func MultiProgram4(b *testing.B) { multiProgram(b, "gcc+swim+mcf+applu") }

// WorkloadGenerator measures trace generation speed.
func WorkloadGenerator(b *testing.B) {
	prof, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

// BusReservation measures the inner-loop cost of the slot calendar
// (steady state must not allocate).
func BusReservation(b *testing.B) {
	bus := interconnect.NewBus(8, 1, interconnect.Forward)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := uint64(i)
		bus.Advance(now)
		if bus.CanInject(now, i%8, (i+3)%8) {
			bus.Inject(now, i%8, (i+3)%8)
		}
	}
}

// Predictor measures branch predictor train+predict throughput.
func Predictor(b *testing.B) {
	p := bpred.New(bpred.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint64(0x1000 + (i%64)*4)
		p.Update(pc, i%3 != 0, pc+16)
	}
}

// CacheAccess measures the data-cache timing-model throughput.
func CacheAccess(b *testing.B) {
	h := cache.NewHierarchy(cache.DefaultHierarchy())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.DataAccess(uint64(i*64)&0xFFFFF, i%4 == 0)
	}
}

// MachineReset measures the cost of recycling a pooled machine for a new
// run (the per-request overhead the sync.Pool path pays instead of full
// construction).
func MachineReset(b *testing.B) {
	cfg := core.MustPaperConfig(core.ArchRing, 8, 2, 1)
	empty := trace.NewSlice(nil)
	m, err := core.New(cfg, empty)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Reset(cfg, empty); err != nil {
			b.Fatal(err)
		}
	}
}
