package isa

import (
	"strings"
	"testing"
)

func TestClassStrings(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if s := c.String(); s == "" || strings.HasPrefix(s, "Class(") {
			t.Errorf("class %d has no name", c)
		}
	}
	if s := Class(200).String(); !strings.HasPrefix(s, "Class(") {
		t.Errorf("out-of-range class string = %q", s)
	}
}

func TestClassPredicates(t *testing.T) {
	cases := []struct {
		c               Class
		fp, mem, branch bool
		latency         int
		pipelined       bool
	}{
		{IntALU, false, false, false, 1, true},
		{IntMult, false, false, false, 3, true},
		{IntDiv, false, false, false, 20, false},
		{FPAdd, true, false, false, 2, true},
		{FPMult, true, false, false, 4, true},
		{FPDiv, true, false, false, 12, false},
		{Load, false, true, false, 1, true},
		{Store, false, true, false, 1, true},
		{Branch, false, false, true, 1, true},
	}
	for _, tc := range cases {
		if tc.c.IsFP() != tc.fp {
			t.Errorf("%v IsFP = %v", tc.c, tc.c.IsFP())
		}
		if tc.c.IsMem() != tc.mem {
			t.Errorf("%v IsMem = %v", tc.c, tc.c.IsMem())
		}
		if tc.c.IsBranch() != tc.branch {
			t.Errorf("%v IsBranch = %v", tc.c, tc.c.IsBranch())
		}
		if tc.c.Latency() != tc.latency {
			t.Errorf("%v latency = %d, want %d", tc.c, tc.c.Latency(), tc.latency)
		}
		if tc.c.Pipelined() != tc.pipelined {
			t.Errorf("%v pipelined = %v", tc.c, tc.c.Pipelined())
		}
	}
}

func TestRegString(t *testing.T) {
	if got := (Reg{Kind: IntReg, Idx: 7}).String(); got != "r7" {
		t.Errorf("int reg string = %q", got)
	}
	if got := (Reg{Kind: FPReg, Idx: 12}).String(); got != "f12" {
		t.Errorf("fp reg string = %q", got)
	}
}

func TestZeroReg(t *testing.T) {
	z := Reg{Kind: IntReg, Idx: ZeroReg}
	if !z.IsZero() {
		t.Error("r31 not recognized as zero register")
	}
	if (Reg{Kind: IntReg, Idx: 3}).IsZero() {
		t.Error("r3 recognized as zero register")
	}
}

func TestSrcRegsFiltersZeros(t *testing.T) {
	in := Inst{
		Class:   IntALU,
		NumSrcs: 2,
		Src:     [2]Reg{{Kind: IntReg, Idx: ZeroReg}, {Kind: IntReg, Idx: 4}},
	}
	var buf [2]Reg
	srcs := in.SrcRegs(&buf)
	if len(srcs) != 1 || srcs[0].Idx != 4 {
		t.Errorf("SrcRegs = %v, want [r4]", srcs)
	}
}

func TestWritesReg(t *testing.T) {
	in := Inst{Class: IntALU, HasDest: true, Dest: Reg{Kind: IntReg, Idx: 5}}
	if !in.WritesReg() {
		t.Error("dest r5 not recognized as register write")
	}
	in.Dest.Idx = ZeroReg
	if in.WritesReg() {
		t.Error("write to zero register counted")
	}
	in.HasDest = false
	if in.WritesReg() {
		t.Error("no-dest instruction counted as write")
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	in := Inst{
		Seq:     1,
		Class:   IntALU,
		NumSrcs: 2,
		Src:     [2]Reg{{Idx: 1}, {Idx: 2}},
		HasDest: true,
		Dest:    Reg{Idx: 3},
	}
	if err := in.Validate(); err != nil {
		t.Errorf("valid instruction rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		in   Inst
	}{
		{"bad class", Inst{Class: NumClasses}},
		{"too many sources", Inst{Class: IntALU, NumSrcs: 3}},
		{"source out of range", Inst{Class: IntALU, NumSrcs: 1, Src: [2]Reg{{Idx: 40}}}},
		{"dest out of range", Inst{Class: IntALU, HasDest: true, Dest: Reg{Idx: 33}}},
		{"store with dest", Inst{Class: Store, HasDest: true, Dest: Reg{Idx: 1}}},
		{"branch with dest", Inst{Class: Branch, HasDest: true, Dest: Reg{Idx: 1}}},
	}
	for _, tc := range cases {
		if err := tc.in.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestInstString(t *testing.T) {
	in := Inst{
		Seq: 9, Class: Load, NumSrcs: 1,
		Src: [2]Reg{{Kind: IntReg, Idx: 2}}, HasDest: true,
		Dest: Reg{Kind: FPReg, Idx: 6}, EffAddr: 0x100,
	}
	s := in.String()
	for _, want := range []string{"#9", "Load", "f6", "r2", "0x100"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
