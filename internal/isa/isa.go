// Package isa defines the abstract instruction set executed by the
// simulator: operation classes, register namespaces and operation latencies.
//
// The simulator is trace-driven, so the ISA carries only what the
// microarchitecture needs to decide timing: which functional unit executes
// an operation, how long it takes, whether it is pipelined, which register
// namespace (integer or floating point) each operand lives in, and whether
// the instruction touches memory or redirects control flow.
//
// The register model follows the paper's enhanced-SimpleScalar setup: 32
// architectural integer registers and 32 architectural FP registers, with
// register 31 of each namespace hardwired to zero (reads never create a
// dependence, writes are discarded), matching the Alpha convention of the
// binaries used in the paper.
package isa

import "fmt"

// Class identifies the kind of operation an instruction performs. The class
// determines which functional unit executes it and its latency.
type Class uint8

// Operation classes. IntALU through FPDiv are computational; Load and Store
// access memory through the centralized data cache; Branch redirects fetch.
const (
	IntALU     Class = iota // integer add/sub/logic/shift/compare, 1 cycle
	IntMult                 // integer multiply, 3 cycles pipelined
	IntDiv                  // integer divide, 20 cycles non-pipelined
	FPAdd                   // FP add/sub/convert/compare, 2 cycles pipelined
	FPMult                  // FP multiply, 4 cycles pipelined
	FPDiv                   // FP divide, 12 cycles non-pipelined
	Load                    // memory read (address computed on an integer ALU)
	Store                   // memory write (address computed on an integer ALU)
	Branch                  // conditional or unconditional control transfer
	NumClasses              // number of classes; keep last
)

var classNames = [NumClasses]string{
	"IntALU", "IntMult", "IntDiv", "FPAdd", "FPMult", "FPDiv",
	"Load", "Store", "Branch",
}

// String returns the mnemonic name of the class.
func (c Class) String() string {
	if c < NumClasses {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Valid reports whether c is a defined operation class.
func (c Class) Valid() bool { return c < NumClasses }

// IsFP reports whether the operation executes on the floating-point
// datapath. FP loads/stores are tagged through their destination/source
// register namespace, not the class: address generation is integer work.
func (c Class) IsFP() bool { return c == FPAdd || c == FPMult || c == FPDiv }

// IsMem reports whether the instruction accesses data memory.
func (c Class) IsMem() bool { return c == Load || c == Store }

// IsBranch reports whether the instruction may redirect control flow.
func (c Class) IsBranch() bool { return c == Branch }

// Latency returns the execution latency in cycles for the class, per the
// paper's Table 2 (loads report the FU/AGU portion only; cache access time
// is added by the memory system).
func (c Class) Latency() int {
	switch c {
	case IntALU, Load, Store, Branch:
		return 1
	case IntMult:
		return 3
	case IntDiv:
		return 20
	case FPAdd:
		return 2
	case FPMult:
		return 4
	case FPDiv:
		return 12
	}
	return 1
}

// Pipelined reports whether a functional unit executing this class can
// accept a new operation every cycle. Integer and FP divides are
// non-pipelined per Table 2.
func (c Class) Pipelined() bool { return c != IntDiv && c != FPDiv }

// RegFileKind selects one of the two architectural register namespaces.
type RegFileKind uint8

const (
	IntReg RegFileKind = iota // integer register namespace
	FPReg                     // floating-point register namespace
)

// String returns "INT" or "FP".
func (k RegFileKind) String() string {
	if k == IntReg {
		return "INT"
	}
	return "FP"
}

// Architectural register file geometry.
const (
	// NumArchRegs is the number of architectural registers per namespace.
	NumArchRegs = 32
	// ZeroReg is the hardwired-zero register index in each namespace;
	// reads from it are always ready and writes to it are dropped.
	ZeroReg = 31
)

// Reg names one architectural register: a namespace and an index.
// The zero value is integer register 0.
type Reg struct {
	Kind RegFileKind
	Idx  uint8
}

// IsZero reports whether r is the hardwired zero register of its namespace.
func (r Reg) IsZero() bool { return r.Idx == ZeroReg }

// String returns e.g. "r7" for integer registers and "f12" for FP ones.
func (r Reg) String() string {
	if r.Kind == IntReg {
		return fmt.Sprintf("r%d", r.Idx)
	}
	return fmt.Sprintf("f%d", r.Idx)
}

// Valid reports whether the register index is within the architectural file.
func (r Reg) Valid() bool { return r.Idx < NumArchRegs }

// Inst is one dynamic instruction in a trace. Operand slots that are unused
// hold the zero register of the relevant namespace (so they never create
// dependences). The paper's machine dispatches at most 2 source operands and
// 1 destination per instruction, matching the Alpha ISA.
type Inst struct {
	// Seq is the dynamic sequence number, assigned by the trace source;
	// it is unique and monotonically increasing within a trace.
	Seq uint64
	// PC is the instruction address, used by the branch predictor and the
	// instruction cache model.
	PC uint64
	// Class selects the functional unit and latency.
	Class Class
	// NumSrcs is how many of Src are meaningful (0, 1 or 2).
	NumSrcs uint8
	// Src holds the source architectural registers.
	Src [2]Reg
	// HasDest reports whether Dest is meaningful.
	HasDest bool
	// Dest is the destination architectural register.
	Dest Reg
	// EffAddr is the effective address for loads and stores.
	EffAddr uint64
	// Taken is the actual outcome for branches.
	Taken bool
	// Target is the branch target address (meaningful when Taken).
	Target uint64
}

// SrcRegs returns the meaningful source registers, excluding hardwired
// zeros (which never create dependences). The returned slice aliases a
// fixed-size backing array; it is valid until the next call with the same
// receiver copy and must not be appended to.
func (in *Inst) SrcRegs(buf *[2]Reg) []Reg {
	n := 0
	for i := uint8(0); i < in.NumSrcs; i++ {
		if in.Src[i].IsZero() {
			continue
		}
		buf[n] = in.Src[i]
		n++
	}
	return buf[:n]
}

// WritesReg reports whether the instruction produces a register value that
// later instructions can consume (i.e. has a non-zero destination).
func (in *Inst) WritesReg() bool { return in.HasDest && !in.Dest.IsZero() }

// String formats the instruction for debugging.
func (in *Inst) String() string {
	s := fmt.Sprintf("#%d %s", in.Seq, in.Class)
	if in.HasDest {
		s += " " + in.Dest.String() + " ="
	}
	for i := uint8(0); i < in.NumSrcs; i++ {
		s += " " + in.Src[i].String()
	}
	if in.Class.IsMem() {
		s += fmt.Sprintf(" @%#x", in.EffAddr)
	}
	if in.Class.IsBranch() {
		if in.Taken {
			s += fmt.Sprintf(" taken->%#x", in.Target)
		} else {
			s += " not-taken"
		}
	}
	return s
}

// Validate checks structural well-formedness of the instruction and returns
// a descriptive error for the first violation found.
func (in *Inst) Validate() error {
	if !in.Class.Valid() {
		return fmt.Errorf("inst %d: invalid class %d", in.Seq, uint8(in.Class))
	}
	if in.NumSrcs > 2 {
		return fmt.Errorf("inst %d: %d sources (max 2)", in.Seq, in.NumSrcs)
	}
	for i := uint8(0); i < in.NumSrcs; i++ {
		if !in.Src[i].Valid() {
			return fmt.Errorf("inst %d: source %d register %v out of range", in.Seq, i, in.Src[i])
		}
	}
	if in.HasDest && !in.Dest.Valid() {
		return fmt.Errorf("inst %d: destination register %v out of range", in.Seq, in.Dest)
	}
	if in.Class == Store && in.HasDest {
		return fmt.Errorf("inst %d: store with destination register", in.Seq)
	}
	if in.Class == Branch && in.HasDest {
		return fmt.Errorf("inst %d: branch with destination register", in.Seq)
	}
	return nil
}
