// Wire scaling: Section 4.6 widened — sweep the bus hop latency from 1 to
// 4 cycles and watch the ring machine's advantage grow as wires get slower
// relative to logic (the paper's scalability argument).
//
//	go run ./examples/wirescaling
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/workload"
)

func main() {
	progs := workload.SuiteNames(workload.ClassFP)

	fmt.Printf("%-10s %12s %12s %10s\n", "hop (cyc)", "Ring FP IPC", "Conv FP IPC", "speedup")
	for hop := 1; hop <= 4; hop++ {
		ring := core.MustPaperConfig(core.ArchRing, 8, 2, 1)
		conv := core.MustPaperConfig(core.ArchConv, 8, 2, 1)
		if hop != 1 {
			ring = ring.WithHopLatency(hop)
			conv = conv.WithHopLatency(hop)
		}
		res, err := harness.Grid([]core.Config{ring, conv}, progs, 100_000, 20_000)
		if err != nil {
			log.Fatal(err)
		}
		ipc := func(cfg string) float64 {
			return harness.Aggregate(res, cfg, harness.SuiteFP,
				func(s *core.Stats) float64 { return s.IPC() })
		}
		sp := harness.Speedup(res, ring.Name, conv.Name, harness.SuiteFP)
		fmt.Printf("%-10d %12.3f %12.3f %9.1f%%\n", hop, ipc(ring.Name), ipc(conv.Name), 100*sp)
	}
}
