// Steering comparison: the paper's Section 4.7 experiment on a single
// machine pair — how much each architecture loses when its steering is
// simplified to SSA (leftmost operand, no balance control), and why the
// ring machine barely cares.
//
//	go run ./examples/steering
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/harness"
)

func main() {
	progs := []string{"gzip", "mcf", "swim", "mgrid"}
	configs := []core.Config{
		core.MustPaperConfig(core.ArchRing, 8, 1, 2),
		core.MustPaperConfig(core.ArchRing, 8, 1, 2).WithSteer(core.SteerSimple),
		core.MustPaperConfig(core.ArchConv, 8, 1, 2),
		core.MustPaperConfig(core.ArchConv, 8, 1, 2).WithSteer(core.SteerSimple),
	}
	res, err := harness.Grid(configs, progs, 150_000, 30_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %28s %8s %10s %8s\n", "program", "configuration", "IPC", "comms/inst", "NREADY")
	for _, p := range progs {
		for _, cfg := range configs {
			st := res[harness.Key{Config: cfg.Name, Workload: p}].Stats
			fmt.Printf("%-10s %28s %8.3f %10.3f %8.2f\n",
				p, cfg.Name, st.IPC(), st.CommsPerInst(), st.AvgNReady())
		}
		fmt.Println()
	}
	fmt.Println("Ring keeps its performance under SSA because the dependence-based")
	fmt.Println("placement is inherently balanced; Conv+SSA concentrates work in a")
	fmt.Println("few clusters and collapses (Section 4.7).")
}
