// Command fleet demonstrates the distributed simulation fleet in one
// process: it starts a dispatch-only coordinator (a ringsimd with -fleet
// and no local workers), attaches two in-process workers to it over real
// HTTP, submits the paper's Figure 6 grid as one sweep, and shows the
// work sharding across the workers while the results come back
// byte-identical to local execution.
//
//	go run ./examples/fleet [-insts 300000] [-warmup 50000] [-capacity N]
//
// The same topology runs across machines with the real binaries:
//
//	ringsimd -fleet -workers -1 -cache-dir /var/cache/ringsim
//	ringsim-worker -coordinator http://coordinator:8080   # on each node
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/results"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	insts := flag.Uint64("insts", 300_000, "measured instructions per program")
	warmup := flag.Uint64("warmup", 50_000, "warm-up instructions (not measured)")
	capacity := flag.Int("capacity", max(1, runtime.GOMAXPROCS(0)/2), "concurrent simulations per worker")
	flag.Parse()

	// Coordinator: no local workers, so every simulation must travel the
	// fleet protocol.
	srv, err := server.New(server.Options{
		Workers: -1,
		Store:   results.NewMemoryLRU(4096),
		Fleet:   &fleet.CoordinatorOptions{LeaseTTL: 10 * time.Second},
	})
	if err != nil {
		fail(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer func() { hs.Close(); srv.Close() }()
	fmt.Printf("coordinator: %s (dispatch-only)\n", hs.URL)

	// Two workers, as if two machines had each run ringsim-worker.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workers := make([]*fleet.Worker, 2)
	for i := range workers {
		workers[i] = fleet.NewWorker(fleet.WorkerOptions{
			Coordinator:  hs.URL,
			Name:         fmt.Sprintf("node-%d", i+1),
			Capacity:     *capacity,
			PollInterval: 20 * time.Millisecond,
		})
		go func(w *fleet.Worker) {
			if err := w.Run(ctx); err != nil && ctx.Err() == nil {
				fail(err)
			}
		}(workers[i])
	}
	fmt.Printf("workers: 2 × capacity %d\n\n", *capacity)

	configs := harness.PaperConfigs()
	wire := make([]map[string]core.Config, len(configs))
	for i, c := range configs {
		wire[i] = map[string]core.Config{"config": c}
	}
	body, err := json.Marshal(map[string]any{
		"configs":  wire,
		"programs": workload.Names(),
		"insts":    *insts,
		"warmup":   *warmup,
	})
	if err != nil {
		fail(err)
	}
	start := time.Now()
	resp, err := http.Post(hs.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		fail(err)
	}
	var sw struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		Total  int    `json:"total"`
		Done   int    `json:"done"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sw); err != nil {
		fail(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted %s: %d runs over the Figure 6 grid\n", sw.ID, sw.Total)

	for sw.Status == "running" || sw.Status == "queued" {
		time.Sleep(200 * time.Millisecond)
		r, err := http.Get(hs.URL + "/v1/sweeps/" + sw.ID)
		if err != nil {
			fail(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&sw); err != nil {
			fail(err)
		}
		r.Body.Close()
		a, b := workers[0].Stats(), workers[1].Stats()
		fmt.Printf("  %d/%d done — node-1: %d, node-2: %d\r", sw.Done, sw.Total, a.Executed, b.Executed)
	}
	fmt.Printf("\nsweep %s in %s\n\n", sw.Status, time.Since(start).Round(time.Millisecond))

	a, b := workers[0].Stats(), workers[1].Stats()
	fmt.Printf("sharding: node-1 executed %d runs, node-2 executed %d runs\n", a.Executed, b.Executed)
	m := srv.Metrics()
	fmt.Printf("coordinator: %d remote completions, %d requeues, %d local simulations\n",
		m.Fleet.RemoteCompleted, m.Fleet.Requeues, m.RunsStarted)

	// Spot-check one record against direct local execution: distribution
	// must not change a single bit.
	req := harness.Request{Config: configs[0], Workload: workload.Single(workload.Names()[0]), Insts: *insts, Warmup: *warmup}
	want, err := results.FromRun(req, harness.Execute(req))
	if err != nil {
		fail(err)
	}
	r, err := http.Get(hs.URL + "/v1/runs/" + want.Key)
	if err != nil {
		fail(err)
	}
	defer r.Body.Close()
	var rv struct {
		Result *results.Result `json:"result"`
	}
	if err := json.NewDecoder(r.Body).Decode(&rv); err != nil {
		fail(err)
	}
	if rv.Result == nil || !reflect.DeepEqual(rv.Result.Stats, want.Stats) {
		fail(fmt.Errorf("fleet record for %s/%s differs from local execution", req.Config.Name, req.Workload.Name()))
	}
	fmt.Printf("verified: %s/%s fleet record is bit-identical to local execution\n",
		req.Config.Name, req.Workload.Name())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fleet:", err)
	os.Exit(1)
}
