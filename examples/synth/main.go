// Example synth exercises the synthetic workload subsystem end to end:
//
//  1. It parses and canonicalizes a parameterized spec, showing that
//     equivalent spellings collapse to one canonical name — and
//     therefore one content key, fleet-wide.
//  2. It sweeps a scenario axis (working-set size) over the paper's
//     preferred ring machine using spec strings alone — no code per
//     scenario, which is the point: workload.Profile stopped being a
//     closed 26-program enum.
//  3. It runs a small multi-programmed fairness study over sampled
//     synth-random mixes, ring vs conventional, with single-stream
//     baselines served through the content-addressed store, then
//     re-runs it to show the second pass simulates nothing.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/results"
	"repro/internal/workload"
)

const (
	insts  = 30_000
	warmup = 6_000
)

func main() {
	// --- 1. Canonicalization ---------------------------------------
	for _, spelling := range []string{
		"synth(ws=4194304, ilp=8.0)",
		"synth(ilp=8,ws=4M)",
	} {
		spec, err := workload.ParseSpec(spelling)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s -> %s\n", spelling, spec.Name())
	}

	// --- 2. A scenario sweep from spec strings ---------------------
	cfg := core.MustPaperConfig(core.ArchRing, 8, 2, 1)
	specs := []string{
		"synth(ws=64K)",
		"synth(ws=1M)",
		"synth(ws=16M)",
		"synth(ws=16M,phases=4)", // phased: the working set moves
	}
	// Grid keys results by canonical workload name — and canonicalization
	// can change the spelling (ws=1M is the default, so "synth(ws=1M)"
	// collapses to "synth").
	for i, s := range specs {
		spec, err := workload.ParseSpec(s)
		if err != nil {
			log.Fatal(err)
		}
		specs[i] = spec.Name()
	}
	fmt.Printf("\nworking-set sweep on %s:\n", cfg.Name)
	res, err := harness.Grid([]core.Config{cfg}, specs, insts, warmup)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range specs {
		r := res[harness.Key{Config: cfg.Name, Workload: s}]
		fmt.Printf("  %-24s IPC %.3f  comms/inst %.3f\n",
			s, r.Stats.IPC(), r.Stats.CommsPerInst())
	}

	// --- 3. The fairness study, twice ------------------------------
	store := results.NewMemoryLRU(1024)
	for pass := 1; pass <= 2; pass++ {
		sims, hits := study(store)
		fmt.Printf("\nfairness pass %d: %d simulated, %d store hits\n", pass, sims, hits)
	}
}

// study runs 2-stream synth-random mixes on ring and conventional
// machines and prints STP/ANTT/fairness. Returns (simulated, hits).
func study(store results.Store) (sims, hits int) {
	run := func(req harness.Request) results.Result {
		res, hit, err := results.RunCached(store, req)
		if err != nil {
			log.Fatal(err)
		}
		if res.Failed() {
			log.Fatalf("%s/%s: %s", req.Config.Name, req.Workload.Name(), res.Err)
		}
		if hit {
			hits++
		} else {
			sims++
		}
		return res
	}
	for _, arch := range []core.ArchKind{core.ArchRing, core.ArchConv} {
		cfg := core.MustPaperConfig(arch, 8, 2, 1)
		for i := uint64(1); i <= 2; i++ {
			spec := workload.Spec{Streams: []workload.StreamSpec{
				{Program: "synth-random", Seed: i},
				{Program: "synth-random", Seed: i + 1},
			}}
			req := harness.Request{Config: cfg, Workload: spec, Insts: insts, Warmup: warmup}
			mixRes := run(req)
			var base []float64
			for _, breq := range harness.BaselineRequests(req) {
				bres := run(breq)
				base = append(base, bres.Stats.IPC())
			}
			m, err := harness.Fairness(mixRes.Stats, base)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-4s %-44s STP %.3f  ANTT %.3f  fairness %.3f\n",
				cfg.Arch, spec.Name(), m.STP, m.ANTT, m.Fairness)
		}
	}
	return sims, hits
}
