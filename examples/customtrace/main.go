// Custom trace: build the paper's Figure 2 example by hand (extended into
// a loop), run it through both machines, and print where each instruction
// was steered — a direct, inspectable view of the steering algorithms.
//
//	go run ./examples/customtrace
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/trace"
)

// reg builds an integer register operand.
func reg(i uint8) isa.Reg { return isa.Reg{Kind: isa.IntReg, Idx: i} }

// buildKernel expands the paper's Figure 2 code into `iters` loop
// iterations:
//
//	I1. R1 = 1          (no sources)
//	I2. R2 = R1 + 1
//	I3. R3 = R1 + R2
//	I4. R4 = R1 + R3
//	I5. R5 = R1 x 3
func buildKernel(iters int) []isa.Inst {
	var insts []isa.Inst
	seq := uint64(0)
	pc := uint64(0x1000)
	emit := func(class isa.Class, dest uint8, srcs ...uint8) {
		in := isa.Inst{Seq: seq, PC: pc, Class: class, HasDest: true, Dest: reg(dest)}
		for i, s := range srcs {
			in.Src[i] = reg(s)
			in.NumSrcs++
			_ = i
		}
		insts = append(insts, in)
		seq++
		pc += 4
	}
	for it := 0; it < iters; it++ {
		emit(isa.IntALU, 1)       // I1: R1 = 1
		emit(isa.IntALU, 2, 1)    // I2: R2 = R1 + 1
		emit(isa.IntALU, 3, 1, 2) // I3: R3 = R1 + R2
		emit(isa.IntALU, 4, 1, 3) // I4: R4 = R1 + R3
		emit(isa.IntMult, 5, 1)   // I5: R5 = R1 x 3
	}
	return insts
}

func main() {
	kernel := buildKernel(2000)
	for _, arch := range []core.ArchKind{core.ArchRing, core.ArchConv} {
		cfg := core.MustPaperConfig(arch, 4, 2, 1)
		m, err := core.New(cfg, trace.NewSlice(kernel))
		if err != nil {
			log.Fatal(err)
		}
		stats, err := m.Run(0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: IPC=%.3f comms/inst=%.3f NREADY=%.2f dispatch share:",
			cfg.Name, stats.IPC(), stats.CommsPerInst(), stats.AvgNReady())
		for c := 0; c < cfg.Clusters; c++ {
			fmt.Printf(" %4.1f%%", 100*stats.ClusterShare(c))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("The ring machine spreads the Figure 2 kernel across all clusters")
	fmt.Println("(each dependence step advances one cluster); the conventional")
	fmt.Println("machine keeps the chain in place until DCOUNT forces a move.")
}
