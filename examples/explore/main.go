// Example explore rediscovers the paper's preferred machine
// automatically. The paper argues for the ring organization at 8
// clusters, 1 bus, and 2-wide issue by hand-comparing the ten Table 3
// configurations. This example instead hands the whole
// arch × clusters × buses × issue-width space to the design-space
// explorer and asks for the IPC × area Pareto frontier — the proposed
// configuration should emerge as a frontier point, not an assumption.
//
// It then re-runs the identical exploration against the same result
// store to demonstrate the content-addressed cache: the second pass
// simulates nothing.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/results"
)

func main() {
	// The search space: both architectures, both paper cluster counts,
	// both bus counts, both issue widths — 16 candidates, of which the
	// paper hand-evaluates ten.
	space := dse.Space{
		Base: core.MustPaperConfig(core.ArchRing, 8, 2, 1),
		Axes: []dse.Axis{
			{Name: dse.AxisArch, Values: []int{0, 1}},
			{Name: dse.AxisClusters, Values: []int{4, 8}},
			{Name: dse.AxisBuses, Values: []int{1, 2}},
			{Name: dse.AxisIW, Values: []int{1, 2}},
		},
	}
	store := results.NewMemoryLRU(1024)
	opts := dse.Options{
		Space:    space,
		Strategy: &dse.GridStrategy{},
		Evaluator: &dse.SimEvaluator{
			// A short representative suite keeps the example quick; the
			// full suite only sharpens the IPC estimates.
			Programs: []string{"gcc", "mcf", "swim", "art"},
			Insts:    40_000,
			Warmup:   8_000,
			Store:    store,
		},
		Seed: 1,
	}

	fmt.Println("Exploring arch × clusters × buses × issue width (16 candidates)...")
	rep, err := dse.Explore(opts)
	if err != nil {
		log.Fatal("explore: ", err)
	}
	fmt.Printf("evaluated %d/%d candidates with %d simulations\n\n",
		rep.Evaluated, rep.SpaceSize, rep.SimsRun)

	// The paper's proposed machine, materialized through the same space
	// so the canonical name matches.
	preferred := dse.Candidate{Params: map[string]int{
		dse.AxisArch: 0, dse.AxisClusters: 8, dse.AxisBuses: 1, dse.AxisIW: 2,
	}}
	prefCfg, err := space.Config(preferred)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Pareto frontier (%d points):\n", len(rep.Frontier))
	fmt.Printf("%-46s %8s %14s\n", "config", "IPC", "area (λ²)")
	onFrontier := false
	for _, p := range rep.Frontier {
		mark := " "
		if p.Config == prefCfg.Name {
			mark = "*"
			onFrontier = true
		}
		fmt.Printf("%-45s%s %8.3f %14.3e\n", p.Config, mark, p.Objectives.IPC, p.Objectives.Area)
	}
	if onFrontier {
		fmt.Println("\n* the paper's proposed configuration (Ring, 8 clusters, 1 bus, 2IW)")
		fmt.Println("  is Pareto-optimal: discovered by search, not assumed.")
	} else {
		fmt.Println("\nnote: the paper's proposed configuration was dominated at this")
		fmt.Println("instruction budget; longer runs sharpen the IPC estimates.")
	}

	// Re-run the identical exploration over the warm store.
	rep2, err := dse.Explore(opts)
	if err != nil {
		log.Fatal("re-explore: ", err)
	}
	fmt.Printf("\nre-exploration over the warm cache: %d simulations, %d cache hits (%.0f%% hit rate)\n",
		rep2.SimsRun, rep2.CacheHits, 100*rep2.CacheHitRate())
}
