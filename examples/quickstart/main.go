// Quickstart: simulate one SPEC2000-like program on the ring clustered
// machine and the conventional baseline, and compare the statistics the
// paper's evaluation is built on.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	const program = "swim" // a communication-hungry SPECfp2000 profile

	for _, arch := range []core.ArchKind{core.ArchRing, core.ArchConv} {
		// The paper's 8-cluster, 2 INT + 2 FP issue, single-bus machine.
		cfg := core.MustPaperConfig(arch, 8, 2, 1)

		prof, err := workload.ByName(program)
		if err != nil {
			log.Fatal(err)
		}
		gen, err := workload.NewGenerator(prof)
		if err != nil {
			log.Fatal(err)
		}

		m, err := core.New(cfg, trace.NewLimit(gen, 200_000))
		if err != nil {
			log.Fatal(err)
		}
		stats, err := m.Run(0)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s on %s:\n", program, cfg.Name)
		fmt.Printf("  IPC                      %.3f\n", stats.IPC())
		fmt.Printf("  communications per inst  %.3f\n", stats.CommsPerInst())
		fmt.Printf("  avg comm distance (hops) %.2f\n", stats.AvgCommDistance())
		fmt.Printf("  avg bus contention (cyc) %.2f\n", stats.AvgCommWait())
		fmt.Printf("  workload imbalance       %.2f (NREADY)\n", stats.AvgNReady())
		fmt.Println()
	}
}
