// Command client exercises a running ringsimd: it submits the paper's
// Figure 6 grid (the ten Table 3 configurations × the full workload
// suite) as one sweep over HTTP, polls until the sweep finishes, and
// renders the Figure 6 speedup table from the returned results — the
// service-side twin of cmd/paperfigs.
//
// Start a server first, e.g.:
//
//	go run ./cmd/ringsimd -cache-dir /tmp/ringsim-cache
//
// then:
//
//	go run ./examples/client [-addr http://localhost:8080]
//	                         [-insts 300000] [-warmup 50000]
//
// Re-running the client is nearly instant: every run is served from the
// daemon's content-addressed cache.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/results"
	"repro/internal/workload"
)

// sweepStatus mirrors the server's sweep view, decoding only what the
// client needs.
type sweepStatus struct {
	ID        string           `json:"id"`
	Status    string           `json:"status"`
	Total     int              `json:"total"`
	Done      int              `json:"done"`
	Failed    int              `json:"failed"`
	Lost      int              `json:"lost"`
	CacheHits int              `json:"cache_hits"`
	Results   []results.Result `json:"results"`
	Error     string           `json:"error"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "ringsimd base URL")
	insts := flag.Uint64("insts", 300_000, "measured instructions per program")
	warmup := flag.Uint64("warmup", 50_000, "warm-up instructions (not measured)")
	flag.Parse()

	configs := harness.PaperConfigs()
	programs := workload.Names()
	body := map[string]any{
		"configs":  wireConfigs(configs),
		"programs": programs,
		"insts":    *insts,
		"warmup":   *warmup,
	}
	sw, err := submit(*addr, body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "client:", err)
		os.Exit(1)
	}
	fmt.Printf("submitted %s: %d runs (%d×%d grid)\n", sw.ID, sw.Total, len(configs), len(programs))

	for sw.Status == "running" || sw.Status == "queued" {
		time.Sleep(500 * time.Millisecond)
		sw, err = poll(*addr, sw.ID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "client:", err)
			os.Exit(1)
		}
		fmt.Printf("  %s: %d/%d done, %d cached\r", sw.ID, sw.Done+sw.Failed+sw.Lost, sw.Total, sw.CacheHits)
	}
	fmt.Println()
	if sw.Status != "done" {
		// "lost" members are runs the service can no longer account for
		// (vanished from both registry and store — e.g. a journal-less
		// coordinator restarted mid-sweep); they are terminal, so report
		// and stop rather than polling forever.
		fmt.Fprintf(os.Stderr, "client: sweep %s ended %s (%d failed, %d lost)\n",
			sw.ID, sw.Status, sw.Failed, sw.Lost)
		if sw.Error != "" {
			fmt.Fprintln(os.Stderr, "client:", sw.Error)
		}
		os.Exit(1)
	}

	// Rebuild the harness result map and let the harness aggregate it,
	// exactly as a local Grid run would be reported.
	res := make(map[harness.Key]harness.Run, len(sw.Results))
	for _, r := range sw.Results {
		class := workload.ClassInt
		if r.Class == "FP" {
			class = workload.ClassFP
		}
		res[harness.Key{Config: r.Config, Workload: r.Program}] = harness.Run{
			Workload: r.Program, Class: class, Stats: r.Stats,
		}
	}
	fmt.Println()
	fmt.Println("Figure 6: Speedup of Ring over Conv (enhanced steering)")
	fmt.Printf("%-28s %9s %9s %9s\n", "configuration", "AVERAGE", "INT", "FP")
	for _, pair := range harness.ConfigPairs() {
		fmt.Printf("%-28s", pair[0])
		for _, s := range []harness.Suite{harness.SuiteAll, harness.SuiteInt, harness.SuiteFP} {
			fmt.Printf(" %8.1f%%", 100*harness.Speedup(res, pair[0], pair[1], s))
		}
		fmt.Println()
	}
}

// wireConfigs wraps full configurations in the sweep body's {"config":…}
// element form.
func wireConfigs(configs []core.Config) []map[string]core.Config {
	out := make([]map[string]core.Config, len(configs))
	for i, c := range configs {
		out[i] = map[string]core.Config{"config": c}
	}
	return out
}

// submit POSTs the sweep and decodes the accepted view.
func submit(addr string, body map[string]any) (sweepStatus, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return sweepStatus{}, err
	}
	resp, err := http.Post(addr+"/v1/sweeps", "application/json", bytes.NewReader(b))
	if err != nil {
		return sweepStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return sweepStatus{}, apiError(resp)
	}
	var sw sweepStatus
	return sw, json.NewDecoder(resp.Body).Decode(&sw)
}

// poll GETs the sweep's current view.
func poll(addr, id string) (sweepStatus, error) {
	resp, err := http.Get(addr + "/v1/sweeps/" + id)
	if err != nil {
		return sweepStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return sweepStatus{}, apiError(resp)
	}
	var sw sweepStatus
	return sw, json.NewDecoder(resp.Body).Decode(&sw)
}

// apiError surfaces the server's {"error": …} body.
func apiError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("unexpected status %s", resp.Status)
}
