package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/steering"
	"repro/internal/workload"
)

// Ablation benchmarks for the design choices DESIGN.md calls out. Each
// reports the quantity the choice controls as custom metrics so a sweep
// is one `go test -bench Ablate` away.

// ablationProgs is a small communication-sensitive mix.
var ablationProgs = []string{"swim", "mgrid", "gzip", "mcf"}

func gridIPC(b *testing.B, cfgs []core.Config, suite harness.Suite) map[string]float64 {
	b.Helper()
	res, err := harness.Grid(cfgs, ablationProgs, 25_000, 5_000)
	if err != nil {
		b.Fatal(err)
	}
	out := make(map[string]float64, len(cfgs))
	for _, c := range cfgs {
		out[c.Name] = harness.Aggregate(res, c.Name, suite,
			func(s *core.Stats) float64 { return s.IPC() })
	}
	return out
}

// BenchmarkAblateCommModel separates steering quality from interconnect
// limits: Ring vs Conv under real buses, contention-free buses, and
// instant communication. (With free communication Conv's explicit balance
// wins; with real buses Ring wins — the paper's causal claim.)
func BenchmarkAblateCommModel(b *testing.B) {
	models := []core.CommModel{core.CommBuses, core.CommNoContention, core.CommInstant}
	var metrics map[string]float64
	for i := 0; i < b.N; i++ {
		var cfgs []core.Config
		for _, m := range models {
			for _, arch := range []core.ArchKind{core.ArchRing, core.ArchConv} {
				c := core.MustPaperConfig(arch, 8, 2, 1)
				c.Comm = m
				c.Name = fmt.Sprintf("%s_%s", c.Name, m)
				cfgs = append(cfgs, c)
			}
		}
		metrics = gridIPC(b, cfgs, harness.SuiteAll)
	}
	for name, ipc := range metrics {
		b.ReportMetric(ipc, name+"-IPC")
	}
}

// BenchmarkAblateDCountThreshold sweeps Conv's imbalance threshold: too
// low over-communicates, too high under-balances. Reports Conv IPC per
// threshold.
func BenchmarkAblateDCountThreshold(b *testing.B) {
	thresholds := []float64{8, 24, 64, 256}
	var metrics map[string]float64
	for i := 0; i < b.N; i++ {
		var cfgs []core.Config
		for _, th := range thresholds {
			c := core.MustPaperConfig(core.ArchConv, 8, 2, 1)
			c.Conv = steering.ConvConfig{Threshold: th, DecayPeriod: 64, DecayFactor: 0.5}
			c.Name = fmt.Sprintf("Conv_thresh%g", th)
			cfgs = append(cfgs, c)
		}
		metrics = gridIPC(b, cfgs, harness.SuiteAll)
	}
	for name, ipc := range metrics {
		b.ReportMetric(ipc, name+"-IPC")
	}
}

// BenchmarkAblateIssueQueueDepth sweeps the per-cluster issue queue size
// around the paper's 16 entries (the structure the paper argues stays
// small and fast at 8 clusters).
func BenchmarkAblateIssueQueueDepth(b *testing.B) {
	depths := []int{8, 16, 32, 64}
	var metrics map[string]float64
	for i := 0; i < b.N; i++ {
		var cfgs []core.Config
		for _, d := range depths {
			c := core.MustPaperConfig(core.ArchRing, 8, 2, 1)
			c.IQInt, c.IQFP = d, d
			c.Name = fmt.Sprintf("Ring_iq%d", d)
			cfgs = append(cfgs, c)
		}
		metrics = gridIPC(b, cfgs, harness.SuiteAll)
	}
	for name, ipc := range metrics {
		b.ReportMetric(ipc, name+"-IPC")
	}
}

// BenchmarkAblateRegisterFile sweeps the per-cluster register count
// around the paper's 48 (the resource the ring steering tie-breaks on).
func BenchmarkAblateRegisterFile(b *testing.B) {
	regs := []int{40, 48, 64, 96}
	var metrics map[string]float64
	for i := 0; i < b.N; i++ {
		var cfgs []core.Config
		for _, r := range regs {
			c := core.MustPaperConfig(core.ArchRing, 8, 2, 1)
			c.RegsInt, c.RegsFP = r, r
			c.Name = fmt.Sprintf("Ring_regs%d", r)
			cfgs = append(cfgs, c)
		}
		metrics = gridIPC(b, cfgs, harness.SuiteAll)
	}
	for name, ipc := range metrics {
		b.ReportMetric(ipc, name+"-IPC")
	}
}

// BenchmarkAblateHopLatency extends Figure 12 to hop latencies 1-4 for
// the FP suite (the wire-scaling trend the conclusion banks on).
func BenchmarkAblateHopLatency(b *testing.B) {
	var speedups [4]float64
	for i := 0; i < b.N; i++ {
		for h := 1; h <= 4; h++ {
			ring := core.MustPaperConfig(core.ArchRing, 8, 2, 1)
			conv := core.MustPaperConfig(core.ArchConv, 8, 2, 1)
			if h != 1 {
				ring = ring.WithHopLatency(h)
				conv = conv.WithHopLatency(h)
			}
			res, err := harness.Grid([]core.Config{ring, conv},
				workload.SuiteNames(workload.ClassFP), 20_000, 4_000)
			if err != nil {
				b.Fatal(err)
			}
			speedups[h-1] = harness.Speedup(res, ring.Name, conv.Name, harness.SuiteFP)
		}
	}
	for h := 1; h <= 4; h++ {
		b.ReportMetric(100*speedups[h-1], fmt.Sprintf("hop%d-speedup-%%", h))
	}
}

// BenchmarkAblateCopyRelease compares the two copy-release policies the
// paper describes (Section 3 analyzes release-on-redefine; we also
// implement the release-on-read alternative). Reports the trade-off:
// communications per instruction vs peak register pressure.
func BenchmarkAblateCopyRelease(b *testing.B) {
	type point struct{ comms, peak, ipc float64 }
	var results [2]point
	for i := 0; i < b.N; i++ {
		for pi, pol := range []core.CopyRelease{core.ReleaseOnRedefine, core.ReleaseOnRead} {
			c := core.MustPaperConfig(core.ArchRing, 8, 2, 1)
			c.Copies = pol
			c.Name = "Ring_" + pol.String()
			res, err := harness.Grid([]core.Config{c}, ablationProgs, 25_000, 5_000)
			if err != nil {
				b.Fatal(err)
			}
			results[pi] = point{
				comms: harness.Aggregate(res, c.Name, harness.SuiteAll,
					func(s *core.Stats) float64 { return s.CommsPerInst() }),
				peak: harness.Aggregate(res, c.Name, harness.SuiteAll,
					func(s *core.Stats) float64 { return float64(s.PeakRegsInt + s.PeakRegsFP) }),
				ipc: harness.Aggregate(res, c.Name, harness.SuiteAll,
					func(s *core.Stats) float64 { return s.IPC() }),
			}
		}
	}
	b.ReportMetric(results[0].comms, "redefine-comms/inst")
	b.ReportMetric(results[1].comms, "onread-comms/inst")
	b.ReportMetric(results[0].peak, "redefine-peak-regs")
	b.ReportMetric(results[1].peak, "onread-peak-regs")
	b.ReportMetric(results[0].ipc, "redefine-IPC")
	b.ReportMetric(results[1].ipc, "onread-IPC")
}
